// Microbenchmark for the router's round disciplines: the legacy batched
// rip-up & re-route loop (shards = 0) against spatially sharded rounds
// (shards >= 1, route/sharding.h). Sharded rounds freeze the price plane
// once per round — windows gather prices instead of exponentiating per
// edge — and fan shards out across the worker pool, so they win twice:
// less work per net even single-threaded, and chunk-parallel scaling with
// the shard count on multi-core hosts. Before the timed rows run, main()
// verifies that sharded results are bit-identical at 1 and 4 shards (the
// documented shard-count invariance).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "api/cdst.h"
#include "dist/transport.h"
#include "route/netlist_gen.h"

#if defined(CDST_SHARD_WORKER_PATH)
#include "dist/subprocess_transport.h"
#endif

namespace {

using namespace cdst;

struct Fixture {
  ChipConfig config;
  RoutingGrid grid;
  Netlist netlist;
};

const Fixture& fixture() {
  static const Fixture* f = [] {
    ChipConfig c;
    c.name = "bench";
    c.num_nets = 240;
    c.num_layers = 4;
    c.nx = c.ny = 28;
    c.capacity = 12.0;
    c.seed = 3;
    auto* out = new Fixture{c, make_chip_grid(c), {}};
    out->netlist = generate_netlist(c, out->grid);
    return out;
  }();
  return *f;
}

RouterOptions options_for(int shards) {
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.threads = 4;
  opts.shards = shards;
  return opts;
}

RouterResult route_rounds(int shards, int rounds) {
  const Fixture& f = fixture();
  Router session(f.grid, f.netlist, options_for(shards));
  const Status st = session.run(rounds);
  if (!st.ok()) {
    std::fprintf(stderr, "bench_router: run failed: %s\n",
                 st.to_string().c_str());
    std::abort();
  }
  return std::move(session).take_result();
}

/// arg 0: the legacy batched discipline; arg >= 1: sharded rounds with that
/// many grid tiles. All rows run 2 Lagrangean rounds on a 4-worker pool.
void BM_Router_Sharded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const Fixture& f = fixture();
  const RouterOptions opts = options_for(shards);
  for (auto _ : state) {
    Router session(f.grid, f.netlist, opts);
    benchmark::DoNotOptimize(session.run(2));
    benchmark::DoNotOptimize(session.result());
  }
  state.SetLabel(shards == 0 ? "batched" : "sharded");
}
BENCHMARK(BM_Router_Sharded)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Sharded rounds across the transport tiers (dist/transport.h): arg 0 runs
/// the rounds directly, 1 through the InProcessTransport serialization
/// loopback (the wire tax: encode + parse every boundary, zero IO), 2
/// through SubprocessTransport's worker pool (the wire tax plus pipe
/// framing and real process hops). Transports are constructed outside the
/// timed loop — the rows measure steady-state rounds, not worker spawns.
void BM_Router_Transport(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  const Fixture& f = fixture();
  RouterOptions opts = options_for(4);

  dist::InProcessTransport in_process;
#if defined(CDST_SHARD_WORKER_PATH)
  dist::SubprocessTransportOptions sopts;
  sopts.worker_path = CDST_SHARD_WORKER_PATH;
  sopts.workers = 4;
  dist::SubprocessTransport subprocess(sopts);
#endif
  if (tier == 1) {
    opts.transport = &in_process;
  } else if (tier == 2) {
#if defined(CDST_SHARD_WORKER_PATH)
    opts.transport = &subprocess;
#else
    state.SkipWithError("cdst_shard_worker not built on this platform");
    return;
#endif
  }

  for (auto _ : state) {
    Router session(f.grid, f.netlist, opts);
    benchmark::DoNotOptimize(session.run(2));
    benchmark::DoNotOptimize(session.result());
  }
  state.SetLabel(tier == 0   ? "direct"
                 : tier == 1 ? "in-process-transport"
                             : "subprocess-transport");
}
BENCHMARK(BM_Router_Transport)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

bool verify_shard_count_invariance() {
  const RouterResult one = route_rounds(/*shards=*/1, /*rounds=*/2);
  const RouterResult four = route_rounds(/*shards=*/4, /*rounds=*/2);
  if (one.routes != four.routes || one.sink_delays != four.sink_delays) {
    std::fprintf(stderr,
                 "bench_router: sharded results are NOT bit-identical "
                 "between 1 and 4 shards\n");
    return false;
  }
  std::fprintf(stderr,
               "bench_router: verified bit-identical routes at 1 and 4 "
               "shards (%zu nets)\n",
               one.routes.size());
  return true;
}

}  // namespace

// Emits machine-readable results to BENCH_router.json by default (CI diffs
// it against the previous main-branch artifact alongside BENCH_cd_scaling);
// an explicit --benchmark_out= flag takes precedence.
int main(int argc, char** argv) {
  if (!verify_shard_count_invariance()) return 1;
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_router.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
