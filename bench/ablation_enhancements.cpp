// Ablation of the Section III practical enhancements: solves the same
// corpus of router-generated instances with each enhancement toggled and
// reports objective quality (vs the all-on configuration) and label counts.
// Covers the design choices DESIGN.md calls out (and the paper's Fig. 1
// claim that penalty-aware construction reduces weighted bifurcation cost).

#include <array>
#include <cstdio>

#include "api/cdst.h"
#include "bench_common.h"
#include "io/table.h"
#include "route/steiner_oracle.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace cdst;
using namespace cdst::bench;

namespace {

struct Config {
  const char* name;
  bool discount, astar, placement, encourage_root;
  QueueKind queue{QueueKind::kTwoLevel};
  bool pooled{true};
};

constexpr Config kConfigs[] = {
    {"all-on", true, true, true, true, QueueKind::kTwoLevel, true},
    {"no-discount (III-A off)", false, true, true, true, QueueKind::kTwoLevel,
     true},
    {"no-astar (III-C off)", true, false, true, true, QueueKind::kTwoLevel,
     true},
    {"no-placement (III-D off)", true, true, false, true, QueueKind::kTwoLevel,
     true},
    {"no-root-bonus (III-E off)", true, true, true, false,
     QueueKind::kTwoLevel, true},
    {"single lazy heap (III-B off)", true, true, true, true,
     QueueKind::kSingleLazy, true},
    // Identical results by construction (see the pooled-state determinism
    // test); this row isolates the allocation cost the pool removes.
    {"no state pool (alloc per search)", true, true, true, true,
     QueueKind::kTwoLevel, false},
    {"plain Algorithm 1", false, false, false, false, QueueKind::kTwoLevel,
     true},
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("ablation_enhancements",
                 "objective/effort impact of each Section III enhancement");
  args.add_option("scale", "0.004", "chip net-count scale");
  args.add_option("seed", "1", "random seed");
  args.parse(argc, argv);

  WallTimer timer;
  ChipConfig chip = paper_chip_configs(args.get_double("scale"))[1];  // c2
  const RoutingGrid grid = make_chip_grid(chip);
  const Netlist netlist = generate_netlist(chip, grid);
  const double dbif = chip_dbif(chip);

  // Warm-up for realistic prices/weights, on a shared worker pool. The
  // per-instance config sweep below stays serial so the per-config solve
  // timings are contention-free.
  ThreadPool pool(2);
  RouterOptions ropts;
  ropts.method = SteinerMethod::kCD;
  ropts.oracle.dbif = dbif;
  Router warm_session(grid, netlist, ropts, &pool);
  if (const Status st = warm_session.run(3); !st.ok()) {
    std::fprintf(stderr, "warm-up failed: %s\n", st.to_string().c_str());
    return 1;
  }
  const RouterResult warm = warm_session.result();
  CongestionCosts costs(grid, ropts.congestion);
  for (const auto& route : warm.routes) costs.add_usage(route, +1.0);

  const std::size_t nc = std::size(kConfigs);
  std::vector<StatAccumulator> excess(nc);
  std::vector<StatAccumulator> labels(nc);
  std::vector<double> solve_time(nc, 0.0);

  // One solver session per configuration: scratch recycles across the whole
  // corpus, so the "no state pool" row isolates exactly the per-search
  // allocation cost, not per-solve setup noise.
  std::vector<CdSolver> solvers;
  for (std::size_t c = 0; c < nc; ++c) {
    SolverOptions o;
    o.discount_components = kConfigs[c].discount;
    o.use_astar = kConfigs[c].astar;
    o.better_steiner_placement = kConfigs[c].placement;
    o.encourage_root = kConfigs[c].encourage_root;
    o.queue = kConfigs[c].queue;
    o.pool_search_state = kConfigs[c].pooled;
    solvers.push_back(CdSolver(o));
  }

  OracleParams params = ropts.oracle;
  std::size_t flat = 0;
  for (std::size_t i = 0; i < netlist.nets.size(); ++i) {
    const Net& net = netlist.nets[i];
    const std::size_t k = net.sinks.size();
    flat += k;
    if (k < 3) continue;
    costs.add_usage(warm.routes[i], -1.0);
    const std::span<const double> weights(
        warm.sink_weights.data() + (flat - k), k);
    params.seed = 7919 + net.id;
    const OracleInstance oi(grid, costs, net, weights, params);

    std::array<double, std::size(kConfigs)> objective{};
    for (std::size_t c = 0; c < nc; ++c) {
      CdSolver::Job job;
      job.instance = &oi.instance();
      job.future_cost = &oi.future_cost();
      job.seed = params.seed;
      WallTimer st;
      const StatusOr<SolveResult> solved = solvers[c].solve(job);
      solve_time[c] += st.seconds();
      if (!solved.ok()) {
        std::fprintf(stderr, "net %u config %s failed: %s\n", net.id,
                     kConfigs[c].name, solved.status().to_string().c_str());
        return 1;
      }
      objective[c] = solved->eval.objective;
      labels[c].add(static_cast<double>(solved->stats.labels_settled));
    }
    for (std::size_t c = 0; c < nc; ++c) {
      if (objective[0] > 0.0) {
        excess[c].add(100.0 * (objective[c] / objective[0] - 1.0));
      }
    }
    costs.add_usage(warm.routes[i], +1.0);
  }

  std::printf("ablation of Section III enhancements on %llu instances "
              "(chip c2 scaled, dbif %.3f ps)\n\n",
              static_cast<unsigned long long>(excess[0].count()), dbif);
  TextTable table({"configuration", "objective vs all-on", "labels settled",
                   "total solve time"});
  for (std::size_t c = 0; c < nc; ++c) {
    table.add_row({kConfigs[c].name,
                   (excess[c].mean() >= 0 ? "+" : "") +
                       fmt_double(excess[c].mean(), 3) + "%",
                   fmt_double(labels[c].mean(), 0),
                   fmt_double(solve_time[c] * 1000.0, 0) + " ms"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nwalltime: %s\n", format_hms(timer.seconds()).c_str());
  return 0;
}
