// Reproduces paper Table V: timing-constrained global routing results with
// bifurcation penalties (dbif > 0) on the eight (scaled) evaluation chips.

#include "global_routing_common.h"

int main(int argc, char** argv) {
  return cdst::bench::run_global_routing_table("table5", /*with_dbif=*/true,
                                               argc, argv);
}
