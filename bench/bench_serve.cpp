// Microbenchmark for the multi-tenant serving core (serve/serve.h):
// tenant-count scaling of the round-sliced scheduler over one shared
// Engine, and the latency-spread price of FIFO scheduling against deficit
// round-robin. The serving core's contract is that scheduling only
// reorders work — per tenant, any serve schedule commits exactly the
// rounds a serial Router::run would — so before the timed rows run,
// main() verifies that served results are bit-identical to serial
// sessions for every tenant.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "route/netlist_gen.h"
#include "serve/serve.h"

namespace {

using namespace cdst;

constexpr int kRoundsPerTenant = 2;
constexpr int kMaxTenants = 8;

struct Fixture {
  ChipConfig config;
  RoutingGrid grid;
  Netlist netlist;
};

// One chip per tenant slot (distinct seeds, same shape) so tenants route
// genuinely different workloads while rows stay comparable.
const Fixture& fixture(int slot) {
  static const std::vector<Fixture>* fixtures = [] {
    auto* out = new std::vector<Fixture>();
    out->reserve(kMaxTenants);
    for (int i = 0; i < kMaxTenants; ++i) {
      ChipConfig c;
      c.name = "serve-bench";
      c.num_nets = 60;
      c.num_layers = 3;
      c.nx = c.ny = 16;
      c.capacity = 9.0;
      c.seed = 11 + static_cast<std::uint64_t>(i);
      Fixture f{c, make_chip_grid(c), {}};
      f.netlist = generate_netlist(f.config, f.grid);
      out->push_back(std::move(f));
    }
    return out;
  }();
  return (*fixtures)[slot];
}

RouterOptions tenant_options() {
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.shards = 2;
  opts.seed = 7;
  return opts;
}

/// arg: concurrently admitted router tenants, each serving
/// kRoundsPerTenant rounds on a 4-lane engine. Measures the whole
/// admit -> pump-to-idle -> close cycle, i.e. the serving core's
/// scheduling overhead on top of the routing work itself.
void BM_Serve_TenantScaling(benchmark::State& state) {
  const int tenants = static_cast<int>(state.range(0));
  Engine engine({/*threads=*/4, /*dense_state_budget_bytes=*/256u << 20});
  for (auto _ : state) {
    serve::EngineServer server(engine);
    std::vector<serve::SessionId> ids;
    for (int t = 0; t < tenants; ++t) {
      const Fixture& f = fixture(t);
      auto id = server.open_router_session(f.grid, f.netlist, tenant_options());
      if (!id.ok() || !server.submit_rounds(id.value(), kRoundsPerTenant).ok()) {
        state.SkipWithError("open/submit failed");
        return;
      }
      ids.push_back(id.value());
    }
    benchmark::DoNotOptimize(server.run_until_idle());
    for (serve::SessionId id : ids) benchmark::DoNotOptimize(server.result(id));
  }
  state.SetLabel("rounds/tenant=" + std::to_string(kRoundsPerTenant));
}
BENCHMARK(BM_Serve_TenantScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Fair (deficit round-robin) against FIFO over 4 equal tenants. Both
/// policies commit bit-identical per-tenant results; what differs is
/// *when* each tenant finishes. The rows pump step() manually and record
/// the scheduling quantum at which each tenant completed its last round;
/// the "completion_spread" counter is last-finisher minus first-finisher
/// in slices — FIFO drains tenants one after another (spread ~= slices of
/// all later tenants), fair interleaving finishes everyone within one
/// scheduling cycle of each other.
void BM_Serve_FairVsFifo(benchmark::State& state) {
  const bool fifo = state.range(0) != 0;
  const int tenants = 4;
  Engine engine({/*threads=*/4, /*dense_state_budget_bytes=*/256u << 20});
  serve::ServeOptions serve_options;
  serve_options.policy = fifo ? serve::SchedulePolicy::kFifo
                              : serve::SchedulePolicy::kDeficitRoundRobin;
  double spread = 0.0;
  for (auto _ : state) {
    serve::EngineServer server(engine, serve_options);
    std::vector<serve::SessionId> ids;
    for (int t = 0; t < tenants; ++t) {
      const Fixture& f = fixture(t);
      auto id = server.open_router_session(f.grid, f.netlist, tenant_options());
      if (!id.ok() || !server.submit_rounds(id.value(), kRoundsPerTenant).ok()) {
        state.SkipWithError("open/submit failed");
        return;
      }
      ids.push_back(id.value());
    }
    std::vector<std::size_t> finish_slice(ids.size(), 0);
    std::size_t slices = 0;
    while (server.step()) {
      ++slices;
      const serve::ServeStats stats = server.stats();
      for (std::size_t t = 0; t < ids.size(); ++t) {
        if (finish_slice[t] != 0) continue;
        for (const serve::TenantSnapshot& snap : stats.tenants) {
          if (snap.id == ids[t] &&
              snap.rounds_completed == kRoundsPerTenant) {
            finish_slice[t] = slices;
          }
        }
      }
    }
    std::size_t first = slices, last = 0;
    for (std::size_t f : finish_slice) {
      if (f < first) first = f;
      if (f > last) last = f;
    }
    spread = static_cast<double>(last - first);
    benchmark::DoNotOptimize(slices);
  }
  state.counters["completion_spread_slices"] = spread;
  state.SetLabel(fifo ? "fifo" : "fair-drr");
}
BENCHMARK(BM_Serve_FairVsFifo)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

bool verify_serve_matches_serial() {
  const int tenants = 3;
  Engine engine({/*threads=*/4, /*dense_state_budget_bytes=*/256u << 20});
  serve::EngineServer server(engine);
  std::vector<serve::SessionId> ids;
  for (int t = 0; t < tenants; ++t) {
    const Fixture& f = fixture(t);
    auto id = server.open_router_session(f.grid, f.netlist, tenant_options());
    if (!id.ok() || !server.submit_rounds(id.value(), kRoundsPerTenant).ok()) {
      std::fprintf(stderr, "bench_serve: open/submit failed\n");
      return false;
    }
    ids.push_back(id.value());
  }
  const Status pump = server.run_until_idle();
  if (!pump.ok()) {
    std::fprintf(stderr, "bench_serve: pump failed: %s\n",
                 pump.to_string().c_str());
    return false;
  }
  for (int t = 0; t < tenants; ++t) {
    const Fixture& f = fixture(t);
    Router serial(f.grid, f.netlist, tenant_options());
    if (!serial.run(kRoundsPerTenant).ok()) {
      std::fprintf(stderr, "bench_serve: serial run failed\n");
      return false;
    }
    const RouterResult want = std::move(serial).take_result();
    const StatusOr<RouterResult> got = server.result(ids[t]);
    if (!got.ok() || got.value().routes != want.routes ||
        got.value().sink_delays != want.sink_delays) {
      std::fprintf(stderr,
                   "bench_serve: served tenant %d is NOT bit-identical to "
                   "its serial session\n",
                   t);
      return false;
    }
  }
  std::fprintf(stderr,
               "bench_serve: verified %d served tenants bit-identical to "
               "serial sessions\n",
               tenants);
  return true;
}

}  // namespace

// Emits machine-readable results to BENCH_serve.json by default (CI diffs
// it against the previous main-branch artifact alongside BENCH_router);
// an explicit --benchmark_out= flag takes precedence.
int main(int argc, char** argv) {
  if (!verify_serve_matches_serial()) return 1;
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_serve.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
