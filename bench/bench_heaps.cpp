// Microbenchmarks for the priority-queue substrate (paper Section III-B):
// binary heap vs Fibonacci heap on Dijkstra-shaped workloads, and the
// two-level heap on many-searches workloads. On sparse global routing graphs
// (m = O(n)) binary heaps win, which is why the solver uses them.

#include <benchmark/benchmark.h>

#include "graph/dijkstra.h"
#include "util/binary_heap.h"
#include "util/d_ary_heap.h"
#include "util/fibonacci_heap.h"
#include "util/rng.h"
#include "util/two_level_heap.h"

namespace {

using namespace cdst;

/// Dijkstra-shaped churn: pushes/decreases interleaved with pop_min.
template <typename Heap>
void churn(Heap& heap, Rng& rng, std::size_t ops, std::uint32_t id_range) {
  double drain_guard = 0.0;
  for (std::size_t i = 0; i < ops; ++i) {
    if (rng.uniform_double() < 0.6 || heap.empty()) {
      heap.push_or_decrease(static_cast<std::uint32_t>(rng.uniform(id_range)),
                            rng.uniform_double(0.0, 1e6));
    } else {
      drain_guard += heap.min_key();
      heap.pop_min();
    }
  }
  benchmark::DoNotOptimize(drain_guard);
}

void BM_BinaryHeapChurn(benchmark::State& state) {
  for (auto _ : state) {
    BinaryHeap<double> heap;
    Rng rng(1);
    churn(heap, rng, static_cast<std::size_t>(state.range(0)), 4096);
  }
}
BENCHMARK(BM_BinaryHeapChurn)->Arg(1 << 14)->Arg(1 << 16);

void BM_FibonacciHeapChurn(benchmark::State& state) {
  for (auto _ : state) {
    FibonacciHeap<double> heap;
    Rng rng(1);
    churn(heap, rng, static_cast<std::size_t>(state.range(0)), 4096);
  }
}
BENCHMARK(BM_FibonacciHeapChurn)->Arg(1 << 14)->Arg(1 << 16);

void BM_DAryHeapChurn(benchmark::State& state) {
  // The cache-friendly 4-ary heap on the same churn workload: siblings share
  // a cache line, so sift-down touches fewer lines than the binary heap.
  for (auto _ : state) {
    DAryHeap<double, 4> heap;
    Rng rng(1);
    churn(heap, rng, static_cast<std::size_t>(state.range(0)), 4096);
  }
}
BENCHMARK(BM_DAryHeapChurn)->Arg(1 << 14)->Arg(1 << 16);

void BM_TwoLevelHeapChurn(benchmark::State& state) {
  const auto groups = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    TwoLevelHeap<double> heap;
    Rng rng(1);
    double guard = 0.0;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      if (rng.uniform_double() < 0.6 || heap.empty()) {
        heap.push_or_decrease(static_cast<std::uint32_t>(rng.uniform(groups)),
                              static_cast<std::uint32_t>(rng.uniform(1024)),
                              rng.uniform_double(0.0, 1e6));
      } else {
        guard += heap.pop_global_min().key;
      }
    }
    benchmark::DoNotOptimize(guard);
  }
}
BENCHMARK(BM_TwoLevelHeapChurn)
    ->Args({1 << 14, 4})
    ->Args({1 << 14, 64})
    ->Args({1 << 14, 512});

/// A side x side grid graph with random edge lengths (m = O(n), the shape of
/// all routing searches).
struct GridFixture {
  Graph g;
  std::vector<double> len;

  explicit GridFixture(int side) {
    GraphBuilder b(static_cast<std::size_t>(side) * side);
    auto id = [side](int x, int y) {
      return static_cast<VertexId>(y * side + x);
    };
    Rng grid_rng(3);
    for (int y = 0; y < side; ++y) {
      for (int x = 0; x < side; ++x) {
        if (x + 1 < side) {
          b.add_edge(id(x, y), id(x + 1, y));
          len.push_back(grid_rng.uniform_double(0.5, 4.0));
        }
        if (y + 1 < side) {
          b.add_edge(id(x, y), id(x, y + 1));
          len.push_back(grid_rng.uniform_double(0.5, 4.0));
        }
      }
    }
    g = Graph(b);
  }
};

void BM_DijkstraGridHeapKind(benchmark::State& state) {
  // Full Dijkstra over a routing-grid-shaped graph (m = O(n)): the paper's
  // III-B argument in one number — binary beats Fibonacci here, and the
  // 4-ary heap edges out binary on cache traffic.
  const GridFixture f(48);
  static constexpr DijkstraHeap kKinds[] = {
      DijkstraHeap::kBinary, DijkstraHeap::kFibonacci, DijkstraHeap::kDAry};
  static constexpr const char* kNames[] = {"binary", "fibonacci", "4-ary"};
  const auto which = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dijkstra(f.g, {0}, ArrayLength{f.len}, kInvalidVertex, kKinds[which]));
  }
  state.SetLabel(kNames[which]);
}
BENCHMARK(BM_DijkstraGridHeapKind)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_DijkstraLengthIndirection(benchmark::State& state) {
  // The templated search kernel's raison d'être: the same full-grid Dijkstra
  // with the edge length supplied as a concrete functor (inlined into the
  // relax loop) vs type-erased through std::function (one indirect call per
  // scanned edge, the pre-refactor behavior).
  const GridFixture f(48);
  if (state.range(0) == 0) {
    const ArrayLength length{f.len};
    for (auto _ : state) {
      benchmark::DoNotOptimize(dijkstra(f.g, {0}, length));
    }
    state.SetLabel("concrete-functor");
  } else {
    const std::vector<double>& len = f.len;
    const EdgeLengthFn length = [&len](EdgeId e) { return len[e]; };
    for (auto _ : state) {
      benchmark::DoNotOptimize(dijkstra(f.g, {0}, length));
    }
    state.SetLabel("std::function");
  }
}
BENCHMARK(BM_DijkstraLengthIndirection)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
