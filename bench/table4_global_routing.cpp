// Reproduces paper Table IV: timing-constrained global routing results with
// dbif = 0 on the eight (scaled) evaluation chips.

#include "global_routing_common.h"

int main(int argc, char** argv) {
  return cdst::bench::run_global_routing_table("table4", /*with_dbif=*/false,
                                               argc, argv);
}
