// Reproduces paper Table I: average cost increase compared to the best of
// the four algorithms on identical cost-distance instances, dbif = 0.

#include "cost_increase_common.h"

int main(int argc, char** argv) {
  return cdst::bench::run_cost_increase_table("table1", /*with_dbif=*/false,
                                              argc, argv);
}
