// Reproduces paper Table II: average cost increase compared to the best of
// the four algorithms on identical cost-distance instances, with bifurcation
// penalties (dbif > 0, derived from the repeater-chain model).

#include "cost_increase_common.h"

int main(int argc, char** argv) {
  return cdst::bench::run_cost_increase_table("table2", /*with_dbif=*/true,
                                              argc, argv);
}
