// Reproduces paper Table III: instance parameters of the evaluation chips.
// Our chips are deterministic synthetic stand-ins for the paper's industrial
// 5nm designs: layer counts match Table III exactly; net counts are the
// paper's scaled by --scale (the global-routing harnesses default to 1/100).

#include <cstdio>

#include "bench_common.h"
#include "io/table.h"
#include "util/args.h"

using namespace cdst;

int main(int argc, char** argv) {
  ArgParser args("table3", "chip parameters (paper Table III, scaled)");
  args.add_option("scale", "0.01", "net-count scale vs the paper");
  args.parse(argc, argv);
  const double scale = args.get_double("scale");

  std::printf("table3 — instance parameters (scale %.4g of paper net counts)\n\n",
              scale);
  TextTable table({"Chip", "# nets", "# layers", "grid", "# sinks", "dbif [ps]"});
  for (const ChipConfig& chip : paper_chip_configs(scale)) {
    const RoutingGrid grid = make_chip_grid(chip);
    const Netlist nl = generate_netlist(chip, grid);
    table.add_row({chip.name, fmt_count(static_cast<long long>(nl.nets.size())),
                   std::to_string(chip.num_layers),
                   std::to_string(chip.nx) + "x" + std::to_string(chip.ny),
                   fmt_count(static_cast<long long>(nl.num_sinks())),
                   fmt_double(bench::chip_dbif(chip), 3)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\npaper net counts: c1 49 734, c2 66 500, c3 286 619, c4 305 094,\n"
              "                  c5 420 131, c6 590 060, c7 650 127, c8 941 271\n");
  return 0;
}
