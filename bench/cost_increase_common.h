/// \file cost_increase_common.h
/// Shared harness for Tables I and II: apples-to-apples comparison of the
/// four Steiner oracles on identical cost-distance instances "as they were
/// generated during timing-constrained global routing".
///
/// Flow per chip: run the Lagrangean router (CD oracle) to convergence to
/// obtain realistic congestion prices and delay weights, then for every
/// multi-sink net rip up its own route, materialize the exact instance the
/// oracle saw, solve it with all four methods, and record each method's
/// relative objective increase over the best of the four (the paper's
/// "minimum" baseline).
///
/// The per-net loop runs on the shared ThreadPool: instances are
/// materialized serially in chunks (materialization mutates the shared
/// congestion state around each net), then each chunk's 4-method solves fan
/// out in parallel with leased solver scratch, and the accumulators are
/// reduced in net order — results are identical at any thread count.

#pragma once

#include <array>
#include <cstdio>

#include "api/cdst.h"
#include "api/scratch_pool.h"
#include "bench_common.h"
#include "io/table.h"
#include "route/steiner_oracle.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cdst::bench {

inline int run_cost_increase_table(const char* table_name, bool with_dbif,
                                   int argc, const char* const* argv) {
  ArgParser args(table_name,
                 std::string("average cost increase vs the best of "
                             "L1/SL/PD/CD on identical instances, ") +
                     (with_dbif ? "dbif > 0" : "dbif = 0"));
  args.add_option("scale", "0.01", "chip net-count scale vs Table III");
  args.add_option("chips", "3", "number of paper chips to draw instances from");
  args.add_option("warmup-iterations", "4", "router rounds before sampling");
  args.add_option("max-instances", "100000", "cap on sampled instances");
  args.add_option("threads", "4", "shared pool workers (results invariant)");
  args.add_option("seed", "1", "random seed");
  args.parse(argc, argv);

  WallTimer timer;
  const auto num_chips =
      static_cast<std::size_t>(std::min<std::int64_t>(8, args.get_int("chips")));
  std::vector<ChipConfig> chips = paper_chip_configs(args.get_double("scale"));
  chips.resize(num_chips);

  ThreadPool pool(std::max(1, static_cast<int>(args.get_int("threads"))));
  detail::SolverScratchPool scratch_pool;

  const auto& buckets = sink_buckets();
  // [bucket][method] accumulators of % increase over the per-instance best.
  std::array<std::array<StatAccumulator, 4>, 4> excess;
  std::array<std::array<StatAccumulator, 4>, 1> excess_all;
  std::size_t sampled = 0;
  const auto max_instances =
      static_cast<std::size_t>(args.get_int("max-instances"));

  for (const ChipConfig& chip : chips) {
    const RoutingGrid grid = make_chip_grid(chip);
    const Netlist netlist = generate_netlist(chip, grid);
    const double dbif = with_dbif ? chip_dbif(chip) : 0.0;

    RouterOptions ropts;
    ropts.method = SteinerMethod::kCD;
    ropts.oracle.dbif = dbif;
    ropts.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    Router warm_session(grid, netlist, ropts, &pool);
    const Status warm_status = warm_session.run(
        static_cast<int>(args.get_int("warmup-iterations")));
    if (!warm_status.ok()) {
      std::fprintf(stderr, "%s warm-up failed: %s\n", chip.name.c_str(),
                   warm_status.to_string().c_str());
      return 1;
    }
    const RouterResult warm = warm_session.result();

    // Rebuild the post-warm-up congestion state.
    CongestionCosts costs(grid, ropts.congestion);
    for (const auto& route : warm.routes) costs.add_usage(route, +1.0);

    // Eligible nets (bucketed, under the cap), with their flat sink ranges.
    struct Candidate {
      std::size_t net_idx;
      std::size_t flat_lo;  ///< first flat sink index
      int bucket;
    };
    std::vector<Candidate> cands;
    std::size_t flat = 0;
    for (std::size_t i = 0; i < netlist.nets.size(); ++i) {
      const std::size_t k = netlist.nets[i].sinks.size();
      const int bucket = bucket_of(k);
      flat += k;
      if (bucket < 0 || sampled + cands.size() >= max_instances) continue;
      cands.push_back(Candidate{i, flat - k, bucket});
    }

    // Chunked: materialize serially (congestion state is ripped up and
    // restored around each net), solve in parallel, reduce in net order.
    // The chunk bounds how many materialized windows are alive at once —
    // 2x the worker count keeps everyone fed without holding dozens of
    // window subgraphs; chunking never affects results (each instance is
    // priced independently), so tying it to the pool size is safe.
    const OracleParams base_params = ropts.oracle;
    const std::size_t chunk =
        2 * static_cast<std::size_t>(pool.concurrency());
    for (std::size_t clo = 0; clo < cands.size(); clo += chunk) {
      const std::size_t chi = std::min(cands.size(), clo + chunk);
      std::vector<OracleInstance> instances;
      std::vector<OracleParams> params(chi - clo, base_params);
      instances.reserve(chi - clo);
      for (std::size_t c = clo; c < chi; ++c) {
        const Candidate& cand = cands[c];
        const Net& net = netlist.nets[cand.net_idx];
        // The instance prices edges without the net's own usage.
        costs.add_usage(warm.routes[cand.net_idx], -1.0);
        const std::span<const double> weights(
            warm.sink_weights.data() + cand.flat_lo, net.sinks.size());
        params[c - clo].seed = ropts.seed * 7919 + net.id;
        instances.push_back(
            OracleInstance(grid, costs, net, weights, params[c - clo]));
        costs.add_usage(warm.routes[cand.net_idx], +1.0);
      }

      std::vector<std::array<double, 4>> objective(chi - clo);
      const std::function<void(std::size_t)> solve_one =
          [&](std::size_t c) {
            const detail::SolverScratchPool::Lease lease =
                scratch_pool.lease();
            for (std::size_t m = 0; m < 4; ++m) {
              objective[c][m] = run_method(instances[c], all_methods()[m],
                                           params[c], lease.get())
                                    .eval.objective;
            }
          };
      pool.parallel_for(0, chi - clo, solve_one);

      for (std::size_t c = clo; c < chi; ++c) {
        ++sampled;
        const std::array<double, 4>& obj = objective[c - clo];
        double best = obj[0];
        for (std::size_t m = 1; m < 4; ++m) best = std::min(best, obj[m]);
        for (std::size_t m = 0; m < 4; ++m) {
          const double pct =
              best > 0.0 ? 100.0 * (obj[m] / best - 1.0) : 0.0;
          excess[static_cast<std::size_t>(cands[c].bucket)][m].add(pct);
          excess_all[0][m].add(pct);
        }
      }
    }
  }

  std::printf("%s — average cost increase compared to minimum, %s\n",
              table_name, with_dbif ? "dbif > 0" : "dbif = 0");
  std::printf("(corpus: %zu instances from %zu scaled chips; paper: Table %s)\n\n",
              sampled, chips.size(), with_dbif ? "II" : "I");
  TextTable table({"|S|", "#instances", "L1", "SL", "PD", "CD"});
  auto row = [&](const char* label,
                 const std::array<StatAccumulator, 4>& accs) {
    table.add_row({label, fmt_count(static_cast<long long>(accs[0].count())),
                   fmt_double(accs[0].mean(), 2) + "%",
                   fmt_double(accs[1].mean(), 2) + "%",
                   fmt_double(accs[2].mean(), 2) + "%",
                   fmt_double(accs[3].mean(), 2) + "%"});
  };
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    row(buckets[b].label, excess[b]);
  }
  table.add_separator();
  row("all", excess_all[0]);
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nwalltime: %s\n", format_hms(timer.seconds()).c_str());
  return 0;
}

}  // namespace cdst::bench
