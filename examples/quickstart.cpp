// Quickstart: build a small global routing grid, define a net with weighted
// sinks, and compute a cost-distance Steiner tree (paper Algorithm 1 with
// all Section III enhancements) through the session API: a persistent
// CdSolver whose scratch is recycled across solves, returning structured
// Status errors instead of throwing.
//
//   ./examples/quickstart

#include <cstdio>

#include "api/cdst.h"
#include "grid/cost_model.h"
#include "grid/future_cost.h"
#include "grid/routing_grid.h"
#include "timing/repeater_chain.h"
#include "util/thread_pool.h"

using namespace cdst;

int main() {
  // 1. A 32x32 grid with 6 routing layers. Linear delays come from an
  //    optimally spaced repeater-chain model; dbif is derived the same way.
  std::vector<LayerSpec> layers = make_default_layer_stack(/*num_layers=*/6);
  const BufferSpec buffer;
  apply_linear_delay_model(layers, buffer);
  const double dbif = compute_dbif(layers, buffer);
  const RoutingGrid grid(32, 32, layers, ViaSpec{1.0, 1.0, 1.5});

  // 2. Congestion prices: pretend the die center is already crowded.
  CongestionCosts costs(grid);
  std::vector<EdgeId> hot;
  for (EdgeId e = 0; e < grid.graph().num_edges(); ++e) {
    const Point3 p = grid.position(grid.graph().tail(e));
    if (p.x > 10 && p.x < 22 && p.y > 10 && p.y < 22) hot.push_back(e);
  }
  costs.add_usage(hot, +1.0);
  const std::vector<double> cost = costs.edge_cost_vector();
  const std::vector<double>& delay = grid.edge_delays();

  // 3. The instance: a root, five sinks, delay weights = timing criticality.
  CostDistanceInstance inst;
  inst.graph = &grid.graph();
  inst.cost = &cost;
  inst.delay = &delay;
  inst.root = grid.vertex_at(2, 16, 0);
  inst.sinks = {
      Terminal{grid.vertex_at(29, 28, 0), 4.0},  // critical sink
      Terminal{grid.vertex_at(30, 16, 0), 0.5},
      Terminal{grid.vertex_at(28, 3, 0), 0.5},
      Terminal{grid.vertex_at(16, 30, 0), 0.1},
      Terminal{grid.vertex_at(16, 2, 0), 0.1},
  };
  inst.dbif = dbif;
  inst.eta = 0.25;

  // 4. An engine + a solver session. The engine owns the shared ThreadPool
  //    (parallelizing the landmark preprocessing here, and solve_batch /
  //    stream the same way) and the shared dense-state budget; the scratch
  //    inside the vended CdSolver is recycled across every solve it runs.
  Engine engine({.threads = 2});
  const FutureCost fc(grid, /*num_landmarks=*/4, &engine.thread_pool());
  SolverOptions opts;
  opts.future_cost = &fc;
  opts.seed = 1;
  CdSolver solver = engine.make_solver(opts);

  const StatusOr<SolveResult> solved = solver.solve(inst);
  if (!solved.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solved.status().to_string().c_str());
    return 1;
  }
  const SolveResult& r = *solved;

  std::printf("cost-distance Steiner tree over %zu sinks (dbif = %.3f ps)\n",
              inst.sinks.size(), dbif);
  std::printf("  connection cost : %10.3f\n", r.eval.connection_cost);
  std::printf("  weighted delay  : %10.3f\n", r.eval.weighted_delay);
  std::printf("  objective       : %10.3f\n", r.eval.objective);
  std::printf("  tree nodes      : %zu (graph edges: %zu)\n",
              r.tree.num_nodes(), r.eval.num_graph_edges);
  for (std::size_t s = 0; s < inst.sinks.size(); ++s) {
    std::printf("  sink %zu: weight %.2f  delay %8.2f ps\n", s,
                inst.sinks[s].weight, r.eval.sink_delays[s]);
  }
  std::printf("  labels settled  : %zu, merges: %zu\n",
              r.stats.labels_settled, r.stats.iterations);
  return 0;
}
