// Figure-3-style visualization: draws the four Section IV-A trees for one
// net as SVG files (plane topologies and the embedded cost-distance tree).
//
//   ./examples/visualize_cd [--out DIR]

#include <cstdio>

#include "api/cdst.h"
#include "embed/embedder.h"
#include "io/svg.h"
#include "route/netlist_gen.h"
#include "route/steiner_oracle.h"
#include "topology/prim_dijkstra.h"
#include "topology/rsmt.h"
#include "topology/shallow_light.h"
#include "util/args.h"
#include "util/rng.h"

using namespace cdst;

int main(int argc, char** argv) {
  ArgParser args("visualize_cd", "emit SVG drawings of the four oracles");
  args.add_option("out", ".", "output directory");
  args.add_option("seed", "9", "random seed");
  args.parse(argc, argv);
  const std::string dir = args.get_string("out");

  ChipConfig chip;
  chip.nx = chip.ny = 36;
  chip.num_layers = 6;
  chip.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const RoutingGrid grid = make_chip_grid(chip);

  Rng rng(chip.seed);
  Net net;
  net.source = Point3{2, 18, 0};
  std::vector<double> weights;
  for (int s = 0; s < 7; ++s) {
    net.sinks.push_back(
        SinkPin{Point3{static_cast<std::int32_t>(6 + rng.uniform(29)),
                       static_cast<std::int32_t>(rng.uniform(36)), 0},
                400.0});
    weights.push_back(std::exp(rng.uniform_double(-1.5, 2.0)));
  }

  CongestionCosts costs(grid);
  OracleParams params;
  params.dbif = 2.0;
  const OracleInstance oi(grid, costs, net, weights, params);

  Rect extent;
  extent.expand(Point2{0, 0});
  extent.expand(Point2{35, 35});

  // Plane topologies.
  const PlaneTopology l1 = rsmt_topology(oi.root_xy(), oi.plane_sinks());
  ShallowLightParams sl;
  sl.delay_per_unit = oi.delay_per_unit();
  const PlaneTopology slt =
      shallow_light_topology(oi.root_xy(), oi.plane_sinks(), sl);
  PrimDijkstraParams pd;
  pd.delay_per_unit = oi.delay_per_unit();
  const PlaneTopology pdt =
      prim_dijkstra_topology(oi.root_xy(), oi.plane_sinks(), pd);

  const struct {
    const char* name;
    const PlaneTopology* topo;
    const char* color;
  } topos[] = {{"l1", &l1, "steelblue"},
               {"sl", &slt, "darkorange"},
               {"pd", &pdt, "seagreen"}};
  for (const auto& t : topos) {
    SvgCanvas canvas(extent);
    draw_topology(canvas, *t.topo, t.color);
    const std::string path = dir + "/topology_" + t.name + ".svg";
    canvas.write_file(path);
    std::printf("wrote %s (length %lld)\n", path.c_str(),
                static_cast<long long>(t.topo->total_length()));
  }

  // Embedded cost-distance tree, solved through a session object.
  CdSolver solver;
  CdSolver::Job job;
  job.instance = &oi.instance();
  job.future_cost = &oi.future_cost();
  const StatusOr<SolveResult> solved = solver.solve(job);
  if (!solved.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solved.status().to_string().c_str());
    return 1;
  }
  const SolveResult& r = *solved;
  SvgCanvas canvas(extent);
  // The tree lives on window vertices; draw through the full-grid ids by
  // re-mapping each node/path (projection only needs positions).
  SteinerTree mapped = r.tree;
  for (auto& n : mapped.nodes) {
    n.graph_vertex = oi.window().to_grid_vertex(n.graph_vertex);
    for (EdgeId& e : n.up_path) e = oi.window().to_grid_edge(e);
  }
  draw_tree(canvas, mapped, grid, "crimson");
  const std::string path = dir + "/tree_cd.svg";
  canvas.write_file(path);
  std::printf("wrote %s (objective %.3f, %zu merges)\n", path.c_str(),
              r.eval.objective, r.stats.iterations);
  return 0;
}
