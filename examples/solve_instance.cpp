// Command-line solver for serialized cost-distance instances: solve any
// instance captured with cdst::write_instance (e.g. sampled from a router
// run) and print the tree and objective breakdown. Writes a demo instance
// first when invoked with --demo.
//
//   ./examples/solve_instance --demo               # creates demo_instance.txt
//   ./examples/solve_instance --file demo_instance.txt --seed 7
//   ./examples/solve_instance --file small.txt --exact   # t <= 6 only

#include <cstdio>

#include "api/cdst.h"
#include "embed/enumerate.h"
#include "grid/routing_grid.h"
#include "io/instance_io.h"
#include "util/args.h"
#include "util/rng.h"

using namespace cdst;

namespace {

void write_demo(const std::string& path) {
  RoutingGrid grid(16, 16, make_default_layer_stack(4), ViaSpec{});
  Rng rng(2024);
  std::vector<double> cost(grid.graph().num_edges());
  for (EdgeId e = 0; e < cost.size(); ++e) {
    cost[e] = grid.base_costs()[e] * (1.0 + 4.0 * rng.uniform_double());
  }
  std::vector<double> delay = grid.edge_delays();
  CostDistanceInstance inst;
  inst.graph = &grid.graph();
  inst.cost = &cost;
  inst.delay = &delay;
  inst.root = grid.vertex_at(1, 8, 0);
  inst.sinks = {Terminal{grid.vertex_at(14, 14, 0), 2.0},
                Terminal{grid.vertex_at(14, 1, 0), 0.5},
                Terminal{grid.vertex_at(8, 15, 0), 0.2},
                Terminal{grid.vertex_at(15, 8, 0), 1.0}};
  inst.dbif = 1.5;
  inst.eta = 0.25;
  write_instance_file(path, inst);
  std::printf("wrote %s (%zu vertices, %zu edges, %zu sinks)\n", path.c_str(),
              grid.graph().num_vertices(), grid.graph().num_edges(),
              inst.sinks.size());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("solve_instance", "solve a serialized cost-distance instance");
  args.add_option("file", "demo_instance.txt", "instance file to solve");
  args.add_flag("demo", false, "write a demo instance file and exit");
  args.add_flag("exact", false, "also run the exhaustive oracle (t <= 6)");
  args.add_flag("no-discount", false, "disable the III-A component discount");
  args.add_option("seed", "1", "random seed");
  args.parse(argc, argv);

  if (args.get_bool("demo")) {
    write_demo(args.get_string("file"));
    return 0;
  }

  const OwnedInstance oi = read_instance_file(args.get_string("file"));
  SolverOptions opts;  // generic graph: geometry-based enhancements off
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  opts.discount_components = !args.get_bool("no-discount");
  CdSolver solver(opts);
  const StatusOr<SolveResult> solved = solver.solve(oi.instance);
  if (!solved.ok()) {
    // Malformed instance files come back as a structured status (e.g.
    // INVALID_ARGUMENT for disconnected terminals), not an uncaught throw.
    std::fprintf(stderr, "solve failed: %s\n",
                 solved.status().to_string().c_str());
    return 1;
  }
  const SolveResult& r = *solved;

  std::printf("instance: %zu vertices, %zu edges, %zu sinks, dbif %.3f, eta %.2f\n",
              oi.graph->num_vertices(), oi.graph->num_edges(),
              oi.instance.sinks.size(), oi.instance.dbif, oi.instance.eta);
  std::printf("cost-distance tree: objective %.4f (connection %.4f, weighted "
              "delay %.4f)\n",
              r.eval.objective, r.eval.connection_cost, r.eval.weighted_delay);
  for (std::size_t s = 0; s < oi.instance.sinks.size(); ++s) {
    std::printf("  sink %zu (v%u, w %.3f): delay %.4f\n", s,
                oi.instance.sinks[s].vertex, oi.instance.sinks[s].weight,
                r.eval.sink_delays[s]);
  }
  std::printf("stats: %zu merges, %zu labels settled, %zu completions\n",
              r.stats.iterations, r.stats.labels_settled,
              r.stats.completions_popped);

  if (args.get_bool("exact")) {
    const ExactResult exact = solve_exact(oi.instance);
    std::printf("exact optimum over %zu topologies: %.4f  (ratio %.4f)\n",
                exact.num_topologies, exact.eval.objective,
                exact.eval.objective > 0.0
                    ? r.eval.objective / exact.eval.objective
                    : 1.0);
  }
  return 0;
}
