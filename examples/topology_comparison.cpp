// Compares the four Steiner oracles of paper Section IV-A — L1, SL, PD
// (each embedded optimally) and CD — on a single congested net, against the
// exact optimum from exhaustive topology enumeration.
//
//   ./examples/topology_comparison [--sinks N] [--seed S] [--dbif D]

#include <cstdio>

#include "api/cdst.h"
#include "embed/enumerate.h"
#include "io/table.h"
#include "route/netlist_gen.h"
#include "route/steiner_oracle.h"
#include "util/args.h"
#include "util/rng.h"

using namespace cdst;

int main(int argc, char** argv) {
  ArgParser args("topology_comparison",
                 "four Steiner oracles vs the exact optimum on one net");
  args.add_option("sinks", "4", "number of sinks (<= 5 enables the oracle)");
  args.add_option("seed", "3", "random seed");
  args.add_option("dbif", "2.5", "bifurcation delay penalty (ps)");
  args.parse(argc, argv);

  ChipConfig chip;
  chip.name = "demo";
  chip.nx = chip.ny = 28;
  chip.num_layers = 6;
  chip.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const RoutingGrid grid = make_chip_grid(chip);

  // Random pins + uneven criticality weights.
  Rng rng(chip.seed);
  Net net;
  net.source = Point3{static_cast<std::int32_t>(rng.uniform(28)),
                      static_cast<std::int32_t>(rng.uniform(28)), 0};
  const auto k = static_cast<std::size_t>(args.get_int("sinks"));
  std::vector<double> weights;
  for (std::size_t s = 0; s < k; ++s) {
    net.sinks.push_back(
        SinkPin{Point3{static_cast<std::int32_t>(rng.uniform(28)),
                       static_cast<std::int32_t>(rng.uniform(28)), 0},
                /*rat=*/500.0});
    weights.push_back(std::exp(rng.uniform_double(-2.0, 2.0)));
  }

  // Pre-congest a vertical band so c and d are genuinely uncorrelated.
  CongestionCosts costs(grid);
  std::vector<EdgeId> hot;
  for (EdgeId e = 0; e < grid.graph().num_edges(); ++e) {
    const Point3 p = grid.position(grid.graph().tail(e));
    if (p.x >= 12 && p.x <= 16) hot.push_back(e);
  }
  for (int i = 0; i < 3; ++i) costs.add_usage(hot, +1.0);

  OracleParams params;
  params.dbif = args.get_double("dbif");
  params.eta = 0.25;
  const OracleInstance oi(grid, costs, net, weights, params);

  TextTable table({"method", "objective", "conn cost", "wgt delay",
                   "edges", "vs best"});
  struct Row {
    const char* name;
    TreeEvaluation eval;
  };
  std::vector<Row> rows;
  SolverScratch scratch;  // recycled across the per-method oracle calls
  for (const SteinerMethod m : all_methods()) {
    rows.push_back(Row{method_name(m), run_method(oi, m, params,
                                                  &scratch).eval});
  }
  if (k <= 5) {
    const ExactResult exact = solve_exact(oi.instance());
    rows.push_back(Row{"OPT", exact.eval});
  }
  double best = rows[0].eval.objective;
  for (const Row& r : rows) best = std::min(best, r.eval.objective);
  for (const Row& r : rows) {
    table.add_row({r.name, fmt_double(r.eval.objective, 3),
                   fmt_double(r.eval.connection_cost, 3),
                   fmt_double(r.eval.weighted_delay, 3),
                   std::to_string(r.eval.num_graph_edges),
                   "+" + fmt_double(100.0 * (r.eval.objective / best - 1.0),
                                    2) +
                       "%"});
  }
  std::printf("net with %zu sinks, dbif = %.2f ps, congested band at x=12..16\n\n",
              k, params.dbif);
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
