// Multi-tenant serving: N router tenants share one Engine through the
// serving core (serve/serve.h) — admission against a dense-state budget,
// deficit-round-robin scheduling at round granularity, a tenant deadline
// that expires cleanly and resumes, and the fleet snapshot an operator
// would watch.
//
// The core guarantee on display: scheduling only reorders work. Every
// tenant's served result is bit-identical to a serial Router session run
// on its own, which the example verifies at the end.
//
//   ./examples/multi_tenant_serving [--tenants N] [--rounds R] [--threads T]

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"
#include "route/netlist_gen.h"
#include "serve/serve.h"
#include "util/args.h"

using namespace cdst;

namespace {

struct Tenant {
  ChipConfig config;
  RoutingGrid grid;
  Netlist netlist;
};

RouterOptions tenant_router_options() {
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.shards = 2;
  opts.seed = 7;
  return opts;
}

void print_fleet(const serve::ServeStats& stats) {
  std::printf("fleet: %zu open, %zu runnable, %zu slices, %zu deadline "
              "expirations\n",
              stats.sessions_open, stats.queue_depth, stats.slices_total,
              stats.deadline_expirations);
  std::printf("  admission: %zu/%zu projected bytes; engine peak %lld of "
              "%lld capacity\n",
              stats.projected_bytes, stats.admission_budget_bytes,
              static_cast<long long>(stats.budget_peak_bytes),
              static_cast<long long>(stats.budget_capacity_bytes));
  for (const serve::TenantSnapshot& t : stats.tenants) {
    std::printf("  tenant %llu %-10s weight=%d rounds=%d/%d ace4=%.3f "
                "util=%.3f%s\n",
                static_cast<unsigned long long>(t.id), t.name.c_str(),
                t.weight, t.rounds_completed, t.rounds_submitted, t.ace4,
                t.max_utilization, t.runnable ? "" : " (idle)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("multi_tenant_serving",
                 "N router tenants time-sliced fairly over one engine");
  args.add_option("tenants", "3", "router tenants to admit");
  args.add_option("rounds", "2", "Lagrangean rounds per tenant");
  args.add_option("threads", "4", "engine worker threads (results invariant)");
  args.parse(argc, argv);
  const int tenants = args.get_int("tenants") < 1 ? 1 : args.get_int("tenants");
  const int rounds = args.get_int("rounds") < 1 ? 1 : args.get_int("rounds");
  const int threads = args.get_int("threads") < 1 ? 1 : args.get_int("threads");

  // 1. One engine = one pool + one dense-state budget; the server adds the
  //    registry, admission and the fair scheduler on top.
  Engine engine({.threads = threads,
                 .dense_state_budget_bytes = 256u << 20});
  serve::ServeOptions serve_options;
  serve_options.max_sessions = static_cast<std::size_t>(tenants);
  serve::EngineServer server(engine, serve_options);

  // 2. Admit the tenants: distinct chips, tenant 0 carries double weight
  //    (two round-slices per scheduling cycle). Each declares a projected
  //    dense-state footprint that admission charges against the budget.
  std::vector<Tenant> chips;
  std::vector<serve::SessionId> ids;
  chips.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    ChipConfig c;
    c.name = "tenant-" + std::to_string(t);
    c.num_nets = 60;
    c.num_layers = 3;
    c.nx = c.ny = 16;
    c.capacity = 9.0;
    c.seed = 11 + static_cast<std::uint64_t>(t);
    chips.push_back({c, make_chip_grid(c), {}});
    chips.back().netlist = generate_netlist(c, chips.back().grid);
  }
  for (int t = 0; t < tenants; ++t) {
    serve::TenantOptions tenant;
    tenant.name = chips[static_cast<std::size_t>(t)].config.name;
    tenant.weight = t == 0 ? 2 : 1;
    tenant.projected_dense_bytes = 8u << 20;
    StatusOr<serve::SessionId> id = server.open_router_session(
        chips[static_cast<std::size_t>(t)].grid,
        chips[static_cast<std::size_t>(t)].netlist, tenant_router_options(),
        tenant);
    if (!id.ok()) {
      std::fprintf(stderr, "admission refused tenant %d: %s\n", t,
                   id.status().to_string().c_str());
      return 1;
    }
    ids.push_back(id.value());
    if (Status st = server.submit_rounds(id.value(), rounds); !st.ok()) {
      std::fprintf(stderr, "submit failed: %s\n", st.to_string().c_str());
      return 1;
    }
  }

  // One admission past the configured depth is refused with a typed
  // status — the registry and every admitted tenant are untouched.
  {
    const Tenant& c = chips.front();
    StatusOr<serve::SessionId> refused =
        server.open_router_session(c.grid, c.netlist, tenant_router_options());
    std::printf("over-admission refused as expected: %s\n",
                refused.status().to_string().c_str());
  }

  // 3. Give the last tenant an already-expired deadline: its first slice
  //    pauses with kDeadlineExceeded before committing anything, every
  //    other tenant drains to completion around it.
  const serve::SessionId late = ids.back();
  if (tenants > 1) {
    (void)server.set_deadline(late, std::chrono::steady_clock::now());
  }
  if (Status st = server.run_until_idle(); !st.ok()) {
    std::fprintf(stderr, "pump failed: %s\n", st.to_string().c_str());
    return 1;
  }
  print_fleet(server.stats());

  // 4. Revive the expired tenant: clear its deadline, resume, pump again.
  //    It finishes exactly the rounds it was submitted, none lost.
  if (tenants > 1) {
    std::printf("reviving tenant %llu after its deadline expired...\n",
                static_cast<unsigned long long>(late));
    (void)server.set_deadline(late, std::nullopt);
    (void)server.resume(late);
    if (Status st = server.run_until_idle(); !st.ok()) {
      std::fprintf(stderr, "resume pump failed: %s\n", st.to_string().c_str());
      return 1;
    }
  }
  print_fleet(server.stats());

  // 5. The whole point: served results are bit-identical to serial
  //    sessions, per tenant, despite the interleaving and the mid-flight
  //    deadline.
  for (int t = 0; t < tenants; ++t) {
    const Tenant& c = chips[static_cast<std::size_t>(t)];
    Router serial(c.grid, c.netlist, tenant_router_options());
    if (!serial.run(rounds).ok()) return 1;
    const RouterResult want = std::move(serial).take_result();
    const StatusOr<RouterResult> got = server.result(ids[static_cast<std::size_t>(t)]);
    if (!got.ok() || got.value().routes != want.routes ||
        got.value().sink_delays != want.sink_delays) {
      std::fprintf(stderr, "tenant %d diverged from its serial session\n", t);
      return 1;
    }
  }
  std::printf("verified: %d served tenants bit-identical to serial sessions "
              "(%d threads)\n",
              tenants, engine.thread_pool().concurrency());
  return 0;
}
