// Streaming pipeline: solve a whole netlist's worth of cost-distance
// instances through CdSolver::stream() without ever materializing the full
// result vector — the shape of a production router feeding millions of
// oracle calls through a fixed memory window.
//
// An Engine owns the shared ThreadPool + DenseStateBudget and vends the
// solver; the stream's bounded in-flight window backpressures submissions
// against that budget, results come back strictly in submission order (bit
// identical to solve_batch at any thread count and poll cadence), and a
// typed EventSink watches per-job completions out of order while the
// consumer folds the in-order results into running aggregates.
//
//   ./examples/streaming_pipeline [--jobs N] [--threads T] [--window W]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/cdst.h"
#include "grid/cost_model.h"
#include "grid/future_cost.h"
#include "grid/routing_grid.h"
#include "util/args.h"
#include "util/rng.h"

using namespace cdst;

namespace {

/// Counts completions as lanes finish (completion order varies with the
/// thread count; the delivered results below never do).
struct CompletionSink final : EventSink {
  std::size_t completions{0};
  void on_job(const JobEvent& e) override {
    completions = e.completed;
    if (e.completed % 16 == 0) {
      std::fprintf(stderr, "  ... %zu/%zu jobs finished\n", e.completed,
                   e.submitted);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("streaming_pipeline",
                 "bounded-window streaming cost-distance solves");
  args.add_option("jobs", "64", "instances to stream");
  args.add_option("threads", "4", "worker threads (results are invariant)");
  args.add_option("window", "8", "max jobs in flight (backpressure)");
  args.parse(argc, argv);
  const auto num_jobs = static_cast<std::size_t>(args.get_int("jobs"));
  const auto window = static_cast<std::size_t>(args.get_int("window"));

  // 1. One routing grid + future-cost oracle serve every instance; the
  //    instances differ in terminals and edge prices (standing in for the
  //    per-net windows a router would cut).
  const RoutingGrid grid(40, 40, make_default_layer_stack(5), ViaSpec{});
  const std::vector<double>& delay = grid.edge_delays();
  std::vector<double> cost(grid.graph().num_edges());
  Rng rng(7);
  for (EdgeId e = 0; e < grid.graph().num_edges(); ++e) {
    cost[e] = grid.base_costs()[e] * (1.0 + rng.uniform_double());
  }
  std::vector<CostDistanceInstance> instances(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    CostDistanceInstance& inst = instances[j];
    inst.graph = &grid.graph();
    inst.cost = &cost;
    inst.delay = &delay;
    inst.dbif = 2.0;
    inst.eta = 0.25;
    inst.root = grid.vertex_at(static_cast<std::int32_t>(rng.uniform(40)),
                               static_cast<std::int32_t>(rng.uniform(40)), 0);
    const std::size_t sinks = 3 + j % 6;
    for (std::size_t s = 0; s < sinks; ++s) {
      inst.sinks.push_back(Terminal{
          grid.vertex_at(static_cast<std::int32_t>(rng.uniform(40)),
                         static_cast<std::int32_t>(rng.uniform(40)), 0),
          0.1 + rng.uniform_double()});
    }
  }

  // 2. The engine owns the shared substrate; the vended solver's stream
  //    draws dense-state memory from engine.dense_budget() and workers from
  //    engine.thread_pool() by construction.
  Engine engine({.threads = std::max(1, static_cast<int>(
                                            args.get_int("threads")))});
  const FutureCost fc(grid, /*num_landmarks=*/4, &engine.thread_pool());
  SolverOptions opts;
  opts.future_cost = &fc;
  CdSolver solver = engine.make_solver(opts);

  CompletionSink sink;
  RunControl control;
  control.events = &sink;
  SolveStream stream = solver.stream({.window = window}, control);

  // 3. Pipeline: submit jobs as they are "discovered", fold results as they
  //    become deliverable — at no point does the process hold more than the
  //    window's worth of solver state or unconsumed results.
  std::size_t delivered = 0;
  double total_objective = 0.0;
  std::size_t total_labels = 0;
  auto consume = [&](StatusOr<SolveResult> r) {
    // Results arrive strictly in submission order, so the count of results
    // seen so far (this one included) names the failing job's index.
    const std::size_t job_index = delivered++;
    if (!r.ok()) {
      std::fprintf(stderr, "job %zu failed: %s\n", job_index,
                   r.status().to_string().c_str());
      return false;
    }
    total_objective += r->eval.objective;
    total_labels += r->stats.labels_settled;
    return true;
  };
  for (std::size_t j = 0; j < num_jobs; ++j) {
    CdSolver::Job job;
    job.instance = &instances[j];
    job.seed = j + 1;
    const Status st = stream.submit(job);
    if (!st.ok()) {
      std::fprintf(stderr, "submit %zu failed: %s\n", j,
                   st.to_string().c_str());
      return 1;
    }
    while (auto r = stream.poll()) {  // opportunistic in-order consumption
      if (!consume(*std::move(r))) return 1;
    }
  }
  for (StatusOr<SolveResult>& r : stream.drain()) {  // the bounded tail
    if (!consume(std::move(r))) return 1;
  }

  std::printf("streamed %zu cost-distance solves (window %zu, %d threads)\n",
              delivered, window, engine.thread_pool().concurrency());
  std::printf("  sum objective   : %12.3f\n", total_objective);
  std::printf("  labels settled  : %zu\n", total_labels);
  std::printf("  peak dense state: %lld bytes (budget %zu)\n",
              static_cast<long long>(
                  engine.dense_budget().peak_reserved_bytes()),
              engine.options().dense_state_budget_bytes);
  if (delivered != num_jobs || sink.completions != num_jobs) {
    std::fprintf(stderr, "lost results: delivered %zu, events %zu\n",
                 delivered, sink.completions);
    return 1;
  }
  return 0;
}
