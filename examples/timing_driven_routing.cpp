// Full timing-constrained global routing on a small synthetic chip,
// comparing the cost-distance oracle against the Prim-Dijkstra baseline —
// a miniature of the paper's Table IV/V experiment — driven through the
// session API: one Router per method on a shared ThreadPool, observed
// through a typed EventSink (batch boundaries while a round runs, round
// barriers with congestion stats).
//
//   ./examples/timing_driven_routing [--nets N] [--iterations K] [--threads T]

#include <cstdio>

#include "api/cdst.h"
#include "io/table.h"
#include "route/netlist_gen.h"
#include "timing/repeater_chain.h"
#include "util/args.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace cdst;

int main(int argc, char** argv) {
  ArgParser args("timing_driven_routing",
                 "CD vs PD inside the Lagrangean global router");
  args.add_option("nets", "400", "number of nets");
  args.add_option("iterations", "3", "rip-up & re-route rounds");
  args.add_option("threads", "2", "worker threads (results are invariant)");
  args.add_flag("dbif", true, "enable bifurcation penalties");
  args.add_flag("progress", false, "print per-round batch progress");
  args.parse(argc, argv);

  ChipConfig chip;
  chip.name = "mini";
  chip.num_nets = static_cast<std::size_t>(args.get_int("nets"));
  chip.num_layers = 7;
  chip.nx = chip.ny = 40;
  chip.capacity = 13.0;
  chip.rat_tightness = 1.3;
  chip.seed = 11;

  const RoutingGrid grid = make_chip_grid(chip);
  const Netlist netlist = generate_netlist(chip, grid);

  double dbif = 0.0;
  if (args.get_bool("dbif")) {
    std::vector<LayerSpec> layers = make_default_layer_stack(chip.num_layers);
    apply_linear_delay_model(layers, BufferSpec{});
    dbif = compute_dbif(layers, BufferSpec{});
  }
  std::printf("chip %s: %zu nets, %d layers, grid %dx%d, dbif %.3f ps\n\n",
              chip.name.c_str(), netlist.nets.size(), chip.num_layers,
              chip.nx, chip.ny, dbif);

  // One worker pool shared by both router sessions (and any other engine
  // object); per-net batches fan out onto it deterministically.
  ThreadPool pool(std::max(1, static_cast<int>(args.get_int("threads"))));

  // Typed event observer: batch progress lines while a round runs, and a
  // summary with congestion stats at every round barrier.
  struct ProgressSink final : EventSink {
    void on_router_round(const RouterRoundEvent& e) override {
      if (e.round_complete) {
        std::fprintf(stderr,
                     "  [route] round %d/%d done: ACE4 %.2f%%, max util "
                     "%.1f%%, %zu overfull edges\n",
                     e.round + 1, e.target_round, e.ace4, e.max_utilization,
                     e.overfull_edges);
      } else {
        std::fprintf(stderr, "  [route] round %d/%d: %zu/%zu nets\n",
                     e.round + 1, e.target_round, e.nets_done, e.nets_total);
      }
    }
  } sink;
  RunControl control;
  if (args.get_bool("progress")) control.events = &sink;

  TextTable table({"Run", "WS [ps]", "TNS [ps]", "ACE4 [%]", "WL [gcells]",
                   "Vias", "Walltime"});
  for (const SteinerMethod m :
       {SteinerMethod::kPD, SteinerMethod::kCD}) {
    RouterOptions opts;
    opts.method = m;
    opts.oracle.dbif = dbif;
    Router session(grid, netlist, opts, &pool);
    const Status status =
        session.run(static_cast<int>(args.get_int("iterations")), control);
    if (!status.ok()) {
      std::fprintf(stderr, "routing failed: %s\n",
                   status.to_string().c_str());
      return 1;
    }
    const RouterResult r = session.result();
    table.add_row({method_name(m), fmt_double(r.timing.worst_slack, 1),
                   fmt_double(r.timing.total_negative_slack, 0),
                   fmt_double(r.congestion.ace4, 2),
                   fmt_double(r.wires.wirelength_gcells, 0),
                   fmt_count(static_cast<long long>(r.wires.num_vias)),
                   format_hms(r.walltime_s)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper Tables IV/V): CD wins timing (WS/TNS), ACE4\n"
      "and vias; PD wins wirelength slightly.\n");
  return 0;
}
